"""The content-addressed Ĝ artifact store.

Layout under the store root::

    objects/<key>.npz        one self-verifying entry per StoreKey
                             (see repro.store.artifact)
    locks/<key>.lock         single-writer publish lock (O_EXCL create;
                             mtime-aged takeover for dead writers)
    quarantine/<key>.<n>.npz entries that failed verification, plus an
                             attributed <...>.reason.json sidecar

Invariants:

- **Crash-safe publish** — entries are written through the shared atomic
  writer (:mod:`repro.atomicio`), so a publisher killed at any point
  leaves only a reapable ``*.tmp`` orphan, never a visible entry.
- **Single writer per key** — concurrent publishers of the same key race
  on an ``O_EXCL`` lock file; losers yield idempotently (the winner is
  publishing the same content — the key *is* the content address).  A
  lock whose mtime ages past ``lock_ttl`` belongs to a dead writer and
  is taken over (``store.lock_takeovers``).
- **Verify-on-read** — every load re-checks the embedded checksum and
  fingerprints; failures raise the typed
  :class:`~repro.quant.export.CorruptArtifactError` /
  :class:`~repro.store.artifact.StaleArtifactError` and are attributed
  in ``store.corrupt`` / ``store.stale``.  The store never returns a
  damaged or mismatched artifact.
- **Quarantine, don't delete** — bad entries are moved aside with a
  reason file so operators can attribute the corruption; the serve layer
  then routes the request back through a fresh health-checked sweep.

Fault injection: the four artifact-store :class:`FaultPlan` kinds
(``truncated_artifact``, ``checksum_flip``, ``stale_writer_lock``,
``fingerprint_mismatch``) fire at publish time, keyed by the store's
publish ordinal, and damage the entry through the same filesystem state
real corruption would — the read path cannot tell the difference.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..atomicio import (
    STALE_TMP_TTL,
    atomic_write_bytes,
    atomic_write_json,
    reap_stale_tmp,
    wall_now,
)
from ..quant.export import CorruptArtifactError
from ..robustness.faults import FaultPlan, resolve_fault_plan
from .artifact import GhatArtifact, StaleArtifactError, deserialize
from .keys import StoreKey

__all__ = ["DEFAULT_LOCK_TTL", "ArtifactStore"]

#: Seconds a publish lock may sit untouched before it is presumed to
#: belong to a dead writer and taken over.  Publishes hold the lock for
#: one atomic write (milliseconds), so minutes of age is unambiguous.
DEFAULT_LOCK_TTL = 60.0

_HITS = telemetry.counter("store.hits")
_MISSES = telemetry.counter("store.misses")
_CORRUPT = telemetry.counter("store.corrupt")
_STALE = telemetry.counter("store.stale")
_QUARANTINED = telemetry.counter("store.quarantined")
_PUBLISHES = telemetry.counter("store.publishes")
_PUBLISH_CONFLICTS = telemetry.counter("store.publish_conflicts")
_LOCK_TAKEOVERS = telemetry.counter("store.lock_takeovers")


class ArtifactStore:
    """Filesystem-backed content-addressed store for Ĝ artifacts."""

    def __init__(
        self,
        root,
        lock_ttl: float = DEFAULT_LOCK_TTL,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.locks = self.root / "locks"
        self.quarantine_dir = self.root / "quarantine"
        self.lock_ttl = float(lock_ttl)
        self.fault_plan = resolve_fault_plan(fault_plan)
        self._publish_ordinal = 0
        for d in (self.objects, self.locks, self.quarantine_dir):
            d.mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------------
    def entry_path(self, key: StoreKey) -> Path:
        return self.objects / f"{key.key}.npz"

    def lock_path(self, key: StoreKey) -> Path:
        return self.locks / f"{key.key}.lock"

    def has(self, key: StoreKey) -> bool:
        return self.entry_path(key).exists()

    # -- read path -------------------------------------------------------------
    def load(self, key: StoreKey) -> Optional[GhatArtifact]:
        """Load + verify the entry for ``key``; ``None`` on a miss.

        Raises :class:`CorruptArtifactError` / :class:`StaleArtifactError`
        (with the ``store.corrupt`` / ``store.stale`` counter bumped) when
        the entry exists but must not be served; callers decide whether to
        quarantine and remeasure (see :mod:`repro.store.serve`).
        """
        path = self.entry_path(key)
        with telemetry.span("store.load"):
            reap_stale_tmp(self.objects)
            try:
                artifact = deserialize(path, expect=key)
            except FileNotFoundError:
                _MISSES.add()
                return None
            except CorruptArtifactError:
                _CORRUPT.add()
                raise
            except StaleArtifactError:
                _STALE.add()
                raise
        _HITS.add()
        return artifact

    # -- write path ------------------------------------------------------------
    def publish(self, key: StoreKey, artifact: GhatArtifact) -> str:
        """Publish ``artifact`` under ``key``; returns the outcome.

        - ``"published"`` — this writer won and the entry is visible;
        - ``"exists"`` — a valid entry was already in place (idempotent
          duplicate publish: the key is the content address, so the
          resident entry is the same measurement);
        - ``"busy"`` — another *live* writer holds the lock; the caller
          loses nothing by yielding, because the winner is publishing the
          same content.
        """
        with telemetry.span("store.publish"):
            ordinal = self._publish_ordinal
            self._publish_ordinal += 1
            if self.fault_plan is not None and self.fault_plan.stale_writer_lock_now(
                ordinal
            ):
                self._plant_stale_lock(key)
            if not self._acquire_lock(key):
                _PUBLISH_CONFLICTS.add()
                return "busy"
            try:
                path = self.entry_path(key)
                if path.exists():
                    try:
                        deserialize(path, expect=key)
                    except (CorruptArtifactError, StaleArtifactError):
                        pass  # resident entry is bad; overwrite it below
                    else:
                        _PUBLISH_CONFLICTS.add()
                        return "exists"
                atomic_write_bytes(path, artifact.serialize())
                _PUBLISHES.add()
                self._inject_post_publish_faults(key, artifact, ordinal)
            finally:
                self._release_lock(key)
        return "published"

    def _acquire_lock(self, key: StoreKey) -> bool:
        """O_EXCL lock create, with mtime-aged takeover of dead writers."""
        lock = self.lock_path(key)
        doc = json.dumps({"pid": os.getpid(), "acquired_at": wall_now()})
        for _ in range(3):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = wall_now() - lock.stat().st_mtime
                except FileNotFoundError:
                    continue  # holder released between open and stat; retry
                if age <= self.lock_ttl:
                    return False  # live writer; yield
                # Aged lock: its writer died mid-publish.  Take over and
                # retry the exclusive create (another thief may also race
                # the unlink; the O_EXCL create re-arbitrates).
                try:
                    os.unlink(lock)
                except FileNotFoundError:
                    pass
                _LOCK_TAKEOVERS.add()
                continue
            with os.fdopen(fd, "w") as fh:  # lint-allow-raw-write: O_EXCL lock file — the create *is* the commit
                fh.write(doc)
            return True
        return False

    def _release_lock(self, key: StoreKey) -> None:
        try:
            os.unlink(self.lock_path(key))
        except FileNotFoundError:
            pass  # a takeover thief revoked us; entry writes stay atomic

    def _plant_stale_lock(self, key: StoreKey) -> None:
        """Injected fault: an aged orphan lock from a dead publisher."""
        lock = self.lock_path(key)
        atomic_write_bytes(lock, b'{"pid": 0, "acquired_at": 0}\n')
        aged = wall_now() - 2.0 * self.lock_ttl - 1.0
        os.utime(lock, (aged, aged))

    def _inject_post_publish_faults(
        self, key: StoreKey, artifact: GhatArtifact, ordinal: int
    ) -> None:
        """Damage the just-published entry the way real corruption would."""
        if self.fault_plan is None:
            return
        path = self.entry_path(key)
        keep = self.fault_plan.artifact_truncation(ordinal)
        if keep is not None:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(max(1, int(size * keep)))
        offset = self.fault_plan.checksum_flip_offset(ordinal)
        if offset is not None:
            data = path.read_bytes()
            # Land mid-file so the flip hits payload bytes; zip archives
            # carry dead padding a single flip can vanish into, so walk
            # forward from the seeded offset until the damage provably
            # makes the read path refuse the entry.
            span = max(1, len(data) - 128)
            for step in range(min(span, 256)):
                pos = 64 + (offset + step) % span
                flipped = bytearray(data)
                flipped[pos] ^= 0x01
                with open(path, "r+b") as fh:
                    fh.seek(0)
                    fh.write(bytes(flipped))
                try:
                    deserialize(path, expect=None)
                except (CorruptArtifactError, StaleArtifactError):
                    break
        if self.fault_plan.fingerprint_mismatch_now(ordinal):
            # Re-publish with alien fingerprints but a *valid* checksum:
            # an internally-consistent artifact from another world.  The
            # hex-digit flip guarantees the digest differs (a reversal
            # would fix palindromic digests in place).
            alien_weights = "".join(
                format(int(c, 16) ^ 0x1, "x")
                for c in artifact.fingerprints.weights
            )
            alien = GhatArtifact(
                matrix=artifact.matrix,
                base_loss=artifact.base_loss,
                single_losses=artifact.single_losses,
                num_evals=artifact.num_evals,
                wall_time=artifact.wall_time,
                mode=artifact.mode,
                bits=artifact.bits,
                fingerprints=StoreKey(
                    weights=alien_weights,
                    data=artifact.fingerprints.data,
                    quant=artifact.fingerprints.quant,
                ),
                model_name=artifact.model_name,
                health=artifact.health,
                created_at=artifact.created_at,
                meta=dict(artifact.meta, injected="fingerprint_mismatch"),
            )
            atomic_write_bytes(path, alien.serialize())

    # -- quarantine ------------------------------------------------------------
    def quarantine(self, key: StoreKey, reason: str) -> Optional[Path]:
        """Move ``key``'s entry aside with an attributed reason file.

        Returns the quarantine path (``None`` when the entry vanished —
        e.g. a concurrent quarantine won).  Quarantined entries never
        match a lookup again; the reason sidecar records why and when.
        """
        src = self.entry_path(key)
        n = 0
        while True:
            dst = self.quarantine_dir / f"{key.key}.{n}.npz"
            if not dst.exists():
                break
            n += 1
        try:
            os.replace(src, dst)
        except FileNotFoundError:
            return None
        _QUARANTINED.add()
        atomic_write_json(
            Path(f"{dst}.reason.json"),
            {
                "key": key.key,
                "fingerprints": key.to_dict(),
                "reason": str(reason),
                "quarantined_at": wall_now(),
            },
        )
        return dst

    # -- maintenance -----------------------------------------------------------
    def reap(self, ttl: float = STALE_TMP_TTL) -> int:
        """Reap aged tmp orphans and dead writer locks; returns the count."""
        reaped = 0
        for d in (self.objects, self.locks, self.quarantine_dir):
            reaped += reap_stale_tmp(d, ttl)
        cutoff = wall_now() - self.lock_ttl
        for lock in self.locks.glob("*.lock"):
            try:
                if lock.stat().st_mtime < cutoff:
                    lock.unlink()
                    reaped += 1
                    _LOCK_TAKEOVERS.add()
            except OSError:
                continue  # raced with the lock holder or another reaper
        return reaped

    def entries(self) -> List[Path]:
        """Entry files currently visible (sorted by key)."""
        return sorted(self.objects.glob("*.npz"))

    def verify_all(self) -> List[Tuple[str, str]]:
        """``(key, status)`` for every entry: ok / corrupt / stale-schema."""
        out: List[Tuple[str, str]] = []
        for path in self.entries():
            name = path.stem
            try:
                deserialize(path, expect=None)
            except CorruptArtifactError as exc:
                out.append((name, f"corrupt: {exc}"))
            except StaleArtifactError as exc:
                out.append((name, f"stale: {exc}"))
            else:
                out.append((name, "ok"))
        return out

    def describe(self) -> Dict[str, object]:
        """Summary counts for the CLI's ``store list``."""
        return {
            "root": str(self.root),
            "entries": len(self.entries()),
            "quarantined": len(list(self.quarantine_dir.glob("*.npz"))),
            "locks": len(list(self.locks.glob("*.lock"))),
        }
