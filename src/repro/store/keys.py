"""Content addressing for Ĝ artifacts.

A stored sensitivity measurement is only safe to serve when it was
measured on *exactly* this world: the same model weights, the same
sensitivity set, and the same quantizer configuration.  Each of those is
fingerprinted independently (so a mismatch can be attributed), and the
three digests combine into one :class:`StoreKey` whose hex ``key`` names
the entry on disk.

What goes into each fingerprint:

- **weights** — layer names, dtypes, shapes, and raw bytes of every
  quantizable layer's *original* (pre-quantization) weights, in layer
  order.  These are the tensors the sweep perturbs; weights outside the
  searched set cannot change Ĝ given fixed data.
- **data** — dtype, shape, and raw bytes of the sensitivity set
  ``(x, y)``.
- **quant** — the quantizer config (candidate bits, scheme, activation
  bits) plus every measurement knob that changes Ĝ's *numerics*:
  measurement mode, ``symmetric_diag``, ``batch_size``, and
  ``eval_batch_k`` (stacked replays are allclose but not bitwise equal
  to sequential ones, so they address different entries).  Execution
  knobs proven bitwise-invariant — worker count, sharding, segmented vs
  naive strategy — are deliberately *excluded*, so a sweep sharded
  across 8 boxes and a single-process sweep share one entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = [
    "StoreKey",
    "data_fingerprint",
    "quantizer_fingerprint",
    "request_key",
    "weights_fingerprint",
]


def _hash_arrays(h, named_arrays: Iterable[Tuple[str, np.ndarray]]) -> None:
    for name, arr in named_arrays:
        arr = np.ascontiguousarray(arr)
        h.update(name.encode("utf-8"))
        h.update(str(arr.dtype).encode("ascii"))
        h.update(repr(arr.shape).encode("ascii"))
        h.update(arr.tobytes())


def weights_fingerprint(layers, originals) -> str:
    """SHA-256 over the searched layers' original weight tensors."""
    h = hashlib.sha256()
    _hash_arrays(
        h, ((layer.name, w) for layer, w in zip(layers, originals))
    )
    return h.hexdigest()


def data_fingerprint(x: np.ndarray, y: np.ndarray) -> str:
    """SHA-256 over the sensitivity set's bytes, dtypes, and shapes."""
    h = hashlib.sha256()
    _hash_arrays(h, (("x", np.asarray(x)), ("y", np.asarray(y))))
    return h.hexdigest()


def quantizer_fingerprint(
    config,
    mode: str,
    *,
    symmetric_diag: bool = False,
    batch_size: int = 256,
    eval_batch_k: int = 0,
) -> str:
    """SHA-256 over the quantizer config + numerics-affecting sweep knobs."""
    doc = {
        "bits": [int(b) for b in config.bits],
        "scheme": str(config.scheme),
        "act_bits": int(config.act_bits),
        "mode": str(mode),
        "symmetric_diag": bool(symmetric_diag),
        "batch_size": int(batch_size),
        "eval_batch_k": int(eval_batch_k),
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()


@dataclass(frozen=True)
class StoreKey:
    """The content address: weights × sensitivity set × quantizer config."""

    weights: str
    data: str
    quant: str

    @property
    def key(self) -> str:
        """The combined digest an entry is filed under."""
        h = hashlib.sha256()
        h.update(self.weights.encode("ascii"))
        h.update(self.data.encode("ascii"))
        h.update(self.quant.encode("ascii"))
        return h.hexdigest()

    def to_dict(self) -> Dict[str, str]:
        return {"weights": self.weights, "data": self.data, "quant": self.quant}

    @classmethod
    def from_dict(cls, doc: Dict[str, str]) -> "StoreKey":
        return cls(
            weights=str(doc.get("weights", "")),
            data=str(doc.get("data", "")),
            quant=str(doc.get("quant", "")),
        )

    def mismatches(self, other: "StoreKey") -> Tuple[str, ...]:
        """Names of the fingerprint components that differ from ``other``."""
        return tuple(
            name
            for name in ("weights", "data", "quant")
            if getattr(self, name) != getattr(other, name)
        )


def request_key(algo, x: np.ndarray, y: np.ndarray, config) -> StoreKey:
    """The :class:`StoreKey` an allocation request addresses.

    ``algo`` is a prepared-or-not CLADO-family algorithm (its weight
    table holds the original tensors the sweep perturbs); ``config`` is
    the effective :class:`~repro.core.api.SensitivityConfig` the fresh
    sweep would run with, so a cached entry and the sweep that would
    replace it always agree on the numerics knobs.
    """
    return StoreKey(
        weights=weights_fingerprint(algo.layers, algo.table.original),
        data=data_fingerprint(x, y),
        quant=quantizer_fingerprint(
            algo.config,
            algo.mode,
            symmetric_diag=config.symmetric_diag,
            batch_size=config.batch_size,
            eval_batch_k=config.eval_batch_k,
        ),
    )
