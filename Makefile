# Convenience targets for the CLADO reproduction.

.PHONY: verify install lint test chaos-smoke bench bench-smoke pretrain smoke reports clean-cache

# Default: lint conventions, the tier-1 suite, then the fault-injection
# equivalence gate (see docs/robustness.md).
.DEFAULT_GOAL := verify
verify: lint test chaos-smoke

install:
	pip install -e . || python setup.py develop

# AST check: no time.time() / bare print() inside src/repro
# (telemetry.monotonic / telemetry.emit are the sanctioned equivalents).
lint:
	python scripts/check_telemetry_lint.py

test:
	PYTHONPATH=src pytest tests/

# Deterministic fault-injection gate: injected worker crashes, corrupted
# checkpoints, and solver-deadline expiry must leave results bitwise
# unchanged / feasible (scripts/chaos_smoke.py).
chaos-smoke:
	python scripts/chaos_smoke.py

bench:
	PYTHONPATH=src pytest benchmarks/ --benchmark-only

# Fast end-to-end pass (small sensitivity sets, few replicates).
smoke:
	REPRO_SCALE=smoke PYTHONPATH=src pytest benchmarks/ --benchmark-only

# Tiny perf gate: runtime profile + segmented-sweep and config-batched
# speedups, appending JSON rows to reports/BENCH_sensitivity_cache.json
# and reports/BENCH_batched_eval.json per run.
bench-smoke:
	REPRO_SCALE=smoke PYTHONPATH=src pytest benchmarks/bench_runtime.py \
		benchmarks/bench_sensitivity_cache.py \
		benchmarks/bench_batched_eval.py --benchmark-only -q

pretrain:
	python -m repro pretrain

reports:
	@ls -1 reports/ 2>/dev/null || echo "run 'make bench' first"

clean-cache:
	rm -rf .cache reports
