# Convenience targets for the CLADO reproduction.

.PHONY: install test bench bench-smoke pretrain smoke reports clean-cache

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Fast end-to-end pass (small sensitivity sets, few replicates).
smoke:
	REPRO_SCALE=smoke pytest benchmarks/ --benchmark-only

# Tiny perf gate: runtime profile + segmented-sweep speedup, appending a
# JSON row to reports/BENCH_sensitivity_cache.json per run.
bench-smoke:
	REPRO_SCALE=smoke pytest benchmarks/bench_runtime.py \
		benchmarks/bench_sensitivity_cache.py --benchmark-only -q

pretrain:
	python -m repro pretrain

reports:
	@ls -1 reports/ 2>/dev/null || echo "run 'make bench' first"

clean-cache:
	rm -rf .cache reports
