"""ViT scenario: mixed-precision quantization of a vision transformer (§6).

The paper's §6 applies the same flow to ViT-base with per-channel affine
quantization and finds CLADO's advantage grows as the size constraint
tightens.  This script quantizes the ViT analogue's encoder projections
(query/key/value/output dense + MLP dense, matching the Appendix A index
map) and prints the per-layer decisions grouped by encoder block.

Run:  python examples/vit_quantization.py
"""

import numpy as np

from repro.core import CLADO, evaluate_assignment
from repro.data import make_dataset, sensitivity_set
from repro.experiments import model_quant_config
from repro.models import get_pretrained, layer_index_map
from repro.quant import bytes_to_mb


def main() -> None:
    dataset = make_dataset()
    model, metrics = get_pretrained("vit_s", dataset, verbose=True)
    config = model_quant_config("vit_s")
    print(f"vit_s FP top-1: {100 * metrics['val_acc']:.2f}%  "
          f"(scheme: {config.scheme} per-channel)")

    clado = CLADO(model, "vit_s", config)
    x, y = sensitivity_set(dataset, size=64)
    print("measuring encoder sensitivities...")
    clado.prepare(x, y)

    names = layer_index_map(model, "vit_s")
    sizes = clado.layer_sizes()
    _, (x_val, y_val) = dataset.splits(1, 512)

    for avg in (3.0, 4.0):
        budget = int(sizes.sum() * avg)
        assignment = clado.allocate(budget)
        _, acc = evaluate_assignment(
            model, clado.table, assignment.bits, x_val, y_val
        )
        print(f"\nbudget {bytes_to_mb(budget / 8):.4f} MB "
              f"({avg}-bit average): top-1 = {100 * acc:.2f}%")
        by_block = {}
        for idx, bit in enumerate(assignment.bits):
            block = names[idx].split(".")[1]
            role = names[idx].split(".", 2)[2]
            by_block.setdefault(block, []).append(f"{role}={int(bit)}")
        for block, roles in by_block.items():
            print(f"  encoder block {block}: " + ", ".join(roles))


if __name__ == "__main__":
    main()
