"""Inspect cross-layer sensitivities: the phenomenon behind CLADO (Fig. 1).

This script measures a full sensitivity matrix for the ResNet-34 analogue,
then:

- prints the strongest positive and negative cross-layer interactions
  (negative entries mean two layers' quantization errors partially cancel
  — exactly what diagonal methods cannot see);
- reruns the paper's Fig. 1 thought experiment: choose two layers to
  quantize; show when the diagonal-only choice is suboptimal;
- reports how indefinite the raw matrix is and what the PSD projection
  changes (the Fig. 7 ablation's starting point).

Run:  python examples/sensitivity_analysis.py
"""

import numpy as np

from repro.core import CLADO, min_eigenvalue, psd_project, psd_violation
from repro.data import make_dataset, sensitivity_set
from repro.experiments import model_quant_config
from repro.models import get_pretrained, layer_index_map
from repro.quant import QuantConfig


def main(model_name: str = "resnet_s34", bits: int = 2) -> None:
    dataset = make_dataset()
    model, _ = get_pretrained(model_name, dataset, verbose=True)
    config = model_quant_config(model_name)
    clado = CLADO(model, model_name, config)
    x, y = sensitivity_set(dataset, size=64)
    print("measuring full sensitivity matrix...")
    clado.prepare(x, y)
    result = clado.raw
    names = layer_index_map(model, model_name)

    m = config.bits.index(bits)
    nb = config.num_choices
    num_layers = result.num_layers
    diag = np.array([result.matrix[i * nb + m, i * nb + m] for i in range(num_layers)])
    cross = np.zeros((num_layers, num_layers))
    for i in range(num_layers):
        for j in range(num_layers):
            if i != j:
                cross[i, j] = result.matrix[i * nb + m, j * nb + m]

    print(f"\nlayer-specific sensitivities at {bits}-bit (Omega_ii):")
    for i in np.argsort(diag)[::-1][:5]:
        print(f"  {names[i]:<36} {diag[i]:+.4f}")

    pairs = [
        (cross[i, j], i, j)
        for i in range(num_layers)
        for j in range(i + 1, num_layers)
    ]
    pairs.sort()
    print("\nstrongest error-compensating pairs (most negative Omega_ij):")
    for value, i, j in pairs[:5]:
        print(f"  {names[i]:<32} x {names[j]:<32} {value:+.5f}")
    print("strongest error-compounding pairs (most positive Omega_ij):")
    for value, i, j in pairs[-5:]:
        print(f"  {names[i]:<32} x {names[j]:<32} {value:+.5f}")

    # Fig. 1 thought experiment on the 6 least-sensitive layers.
    keep = np.sort(np.argsort(diag)[:6])
    best_diag = best_full = None
    best_diag_score = best_full_score = np.inf
    for a_idx in range(len(keep)):
        for b_idx in range(a_idx + 1, len(keep)):
            i, j = keep[a_idx], keep[b_idx]
            sd = diag[i] + diag[j]
            sf = sd + 2 * cross[i, j]
            if sd < best_diag_score:
                best_diag_score, best_diag = sd, (i, j)
            if sf < best_full_score:
                best_full_score, best_full = sf, (i, j)
    print(f"\npick-2-layers experiment ({bits}-bit, 6 candidate layers):")
    print(f"  diagonal-only choice: {tuple(names[k] for k in best_diag)}")
    print(f"  cross-aware choice:   {tuple(names[k] for k in best_full)}")
    if tuple(best_diag) != tuple(best_full):
        d = best_diag
        print(
            "  -> diagonal choice is suboptimal: its actual score "
            f"{diag[d[0]] + diag[d[1]] + 2 * cross[d]:.5f} vs optimal "
            f"{best_full_score:.5f}"
        )
    else:
        print("  -> choices agree on this instance")

    neg, total = psd_violation(result.matrix)
    print(f"\nraw matrix min eigenvalue: {min_eigenvalue(result.matrix):.3e}")
    print(f"negative eigen-mass: {100 * neg / total:.1f}% "
          "(clipped by the PSD projection before solving)")
    projected = psd_project(result.matrix)
    drift = np.abs(projected - 0.5 * (result.matrix + result.matrix.T)).max()
    print(f"max entry change from projection: {drift:.2e}")


if __name__ == "__main__":
    main()
