"""Quickstart: mixed-precision quantization of a small ResNet with CLADO.

This is the minimal end-to-end workflow of the library:

1. get a pretrained model and data (trained on first call, then cached),
2. measure cross-layer sensitivities on a small sensitivity set,
3. solve the Integer Quadratic Program for a model-size budget,
4. evaluate the resulting mixed-precision model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    CLADO,
    SensitivityConfig,
    SolverConfig,
    evaluate_assignment,
    upq_assignment,
)
from repro.data import make_dataset, sensitivity_set
from repro.models import get_pretrained
from repro.quant import QuantConfig, bytes_to_mb


def main() -> None:
    # 1. Data and a pretrained model (cached under .cache/ after first run).
    dataset = make_dataset()
    model, metrics = get_pretrained("resnet_s20", dataset, verbose=True)
    print(f"pretrained resnet_s20: val top-1 = {100 * metrics['val_acc']:.2f}%")

    # A small sensitivity set (the paper uses 256-4096 ImageNet samples).
    x_sens, y_sens = sensitivity_set(dataset, size=64)
    _, (x_val, y_val) = dataset.splits(1, 512)

    # 2. Measure sensitivities: |B|*I single-layer evals + pairwise evals.
    #    SensitivityConfig controls how the sweep runs (strategy, workers,
    #    checkpointing); the defaults use the prefix-cached segmented sweep.
    config = QuantConfig(bits=(2, 4, 8))
    clado = CLADO(model, "resnet_s20", config, sensitivity=SensitivityConfig())
    print("measuring sensitivities (forward evaluations only)...")
    clado.prepare(x_sens, y_sens)
    print(
        f"  {clado.raw.num_evals} loss evaluations in "
        f"{clado.prepare_time:.1f}s over {len(clado.layers)} layers"
    )

    # 3. Allocate bit-widths for a budget equal to 4-bit uniform precision.
    sizes = clado.layer_sizes()
    budget_bits = int(sizes.sum()) * 4
    #    allocate() returns an AllocationResult: the assignment plus solver
    #    status, achieved size, and (under --trace runs) a manifest link.
    result = clado.allocate(budget_bits, solver=SolverConfig(time_limit=20.0))
    print(f"\nbudget: {bytes_to_mb(budget_bits / 8):.4f} MB (= 4-bit UPQ)")
    print(f"CLADO bits per layer: {list(map(int, result.bits))}")
    print(f"solver: {result.solver_method} ({result.solver_status}), "
          f"{result.solve_seconds:.2f}s, "
          f"budget utilization {result.utilization:.1%}")
    assignment = result

    # 4. Evaluate against uniform 4-bit quantization at the same size.
    _, acc_clado = evaluate_assignment(
        model, clado.table, assignment.bits, x_val, y_val
    )
    upq_bits = upq_assignment(sizes, config.bits, budget_bits)
    _, acc_upq = evaluate_assignment(model, clado.table, upq_bits, x_val, y_val)
    print(f"\ntop-1 at equal size:  CLADO {100 * acc_clado:.2f}%  "
          f"vs  4-bit UPQ {100 * acc_upq:.2f}%")


if __name__ == "__main__":
    main()
