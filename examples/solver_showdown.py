"""Compare IQP solvers on a *measured* sensitivity matrix (§7, Fig. 7).

The paper solves Eq. 11 with Gurobi and reports (a) solutions in seconds
when the matrix is PSD-projected and (b) non-convergence without the
projection.  This library replaces Gurobi with exact branch-and-bound
(convex-QP bounds), a knapsack DP for separable objectives, and a greedy
heuristic.  This script runs them all on the ViT analogue's measured
matrix and cross-checks objective values, then shows the PSD-ablation
solver behaviour.

Run:  python examples/solver_showdown.py
"""

import numpy as np

from repro.core import CLADO, psd_project
from repro.data import make_dataset, sensitivity_set
from repro.experiments import model_quant_config
from repro.models import get_pretrained
from repro.solvers import (
    MPQProblem,
    solve_branch_and_bound,
    solve_dp,
    solve_greedy,
)


def main(model_name: str = "vit_s") -> None:
    dataset = make_dataset()
    model, _ = get_pretrained(model_name, dataset, verbose=True)
    config = model_quant_config(model_name)
    clado = CLADO(model, model_name, config)
    x, y = sensitivity_set(dataset, size=48)
    print("measuring sensitivities...")
    clado.prepare(x, y)
    sizes = clado.layer_sizes()
    budget = int(sizes.sum() * 3.5)

    problem = MPQProblem(clado.matrix, sizes, config.bits, budget)
    print(f"\nIQP: {problem.num_vars} binary vars, {problem.num_layers} layers, "
          f"budget = 3.5-bit average")

    bb = solve_branch_and_bound(problem, time_limit=30)
    print(f"branch&bound : obj={bb.objective:.6f} nodes={bb.nodes} "
          f"time={bb.wall_time:.2f}s certified={bb.optimal}")

    greedy = solve_greedy(problem)
    print(f"greedy+LS    : obj={greedy.objective:.6f} "
          f"time={greedy.wall_time:.3f}s "
          f"(+{100 * (greedy.objective - bb.objective) / max(abs(bb.objective), 1e-12):.1f}% vs B&B)")

    diag_problem = MPQProblem(
        np.diag(np.diag(clado.matrix)), sizes, config.bits, budget
    )
    dp = solve_dp(diag_problem)
    print(f"knapsack DP  : obj={dp.objective:.6f} (diagonal objective) "
          f"time={dp.wall_time:.3f}s exact={dp.optimal}")

    # PSD ablation: solve on the raw (indefinite) matrix.
    raw_sym = 0.5 * (clado.raw.matrix + clado.raw.matrix.T)
    eigs = np.linalg.eigvalsh(raw_sym)
    print(f"\nraw matrix eigen-range: [{eigs.min():.2e}, {eigs.max():.2e}]")
    raw_problem = MPQProblem(raw_sym, sizes, config.bits, budget)
    raw_bb = solve_branch_and_bound(raw_problem, time_limit=10, max_nodes=500)
    print(f"no-PSD solve : certified={raw_bb.optimal} nodes={raw_bb.nodes} "
          f"time={raw_bb.wall_time:.1f}s  "
          "(mirrors the paper: without PSD the solver cannot certify)")
    projected = psd_project(clado.raw.matrix)
    psd_bb = solve_branch_and_bound(
        MPQProblem(projected, sizes, config.bits, budget), time_limit=30
    )
    print(f"PSD solve    : certified={psd_bb.optimal} nodes={psd_bb.nodes} "
          f"time={psd_bb.wall_time:.1f}s")


if __name__ == "__main__":
    main()
