"""QAT scenario: recover accuracy of an aggressively quantized model (Fig. 3).

Workload: the budget is so tight (≈2.5-bit average) that post-training
quantization alone degrades badly.  The paper's Fig. 3 shows that a few
epochs of quantization-aware fine-tuning on top of a *good bit assignment*
recovers most of the loss — and CLADO's assignment stays ahead after QAT.

Run:  python examples/qat_finetune.py
"""

import numpy as np

from repro.core import (
    CLADO,
    QATConfig,
    evaluate_assignment,
    qat_finetune,
    upq_assignment,
)
from repro.data import make_dataset, sensitivity_set
from repro.experiments import model_quant_config
from repro.models import get_pretrained, quantizable_layers
from repro.quant import QuantizedWeightTable


def main(model_name: str = "resnet_s34") -> None:
    dataset = make_dataset()
    config = model_quant_config(model_name)
    (x_train, y_train), (x_val, y_val) = dataset.splits(768, 512)
    x_sens, y_sens = sensitivity_set(dataset, size=64)

    model, _ = get_pretrained(model_name, dataset, verbose=True)
    clado = CLADO(model, model_name, config)
    print("measuring sensitivities...")
    clado.prepare(x_sens, y_sens)
    sizes = clado.layer_sizes()
    budget = int(sizes.sum() * 2.5)  # between 2- and 4-bit UPQ
    assignment = clado.allocate(budget)
    print(f"CLADO assignment at 2.5-bit-average budget: "
          f"{list(map(int, assignment.bits))}")

    _, ptq_acc = evaluate_assignment(
        model, clado.table, assignment.bits, x_val, y_val
    )
    upq_bits = upq_assignment(sizes, config.bits, budget)
    _, upq_acc = evaluate_assignment(model, clado.table, upq_bits, x_val, y_val)
    print(f"PTQ top-1: CLADO {100 * ptq_acc:.2f}%  "
          f"vs {int(upq_bits[0])}-bit UPQ {100 * upq_acc:.2f}%")

    # Fine-tune a fresh copy under the fixed assignment (STE fake-quant).
    qat_model, _ = get_pretrained(model_name, dataset)
    layers = quantizable_layers(qat_model, model_name)
    print("running QAT (3 epochs)...")
    stats = qat_finetune(
        qat_model, layers, assignment.bits, x_train, y_train,
        QATConfig(epochs=3, lr=5e-3), scheme=config.scheme,
    )
    table = QuantizedWeightTable(layers, config)
    _, qat_acc = evaluate_assignment(
        qat_model, table, assignment.bits, x_val, y_val
    )
    print(f"post-QAT top-1: {100 * qat_acc:.2f}%  "
          f"(final train loss {stats['final_train_loss']:.3f})")
    print(f"QAT recovered {100 * (qat_acc - ptq_acc):.2f} points of accuracy")


if __name__ == "__main__":
    main()
