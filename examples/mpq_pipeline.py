"""Deployment scenario: compress a CNN to a memory budget, comparing algorithms.

Motivating workload (the paper's intro): a vision model must fit a strict
on-device weight-memory budget.  Uniform quantization at the feasible
precision wastes accuracy; mixed precision does better, and accounting for
cross-layer error interactions (CLADO) does best.

This script runs HAWQ, MPQCO, CLADO* (no cross terms) and CLADO on the
ResNet-50 analogue at three budgets and prints a Table-1-style comparison.

Run:  python examples/mpq_pipeline.py [model_name]
"""

import sys

from repro.core import (
    CLADO,
    HAWQ,
    MPQCO,
    SensitivityConfig,
    evaluate_assignment,
    setup_activation_quant,
)
from repro.data import make_dataset, sensitivity_set
from repro.experiments import model_quant_config
from repro.models import get_pretrained, evaluate_model
from repro.quant import bytes_to_mb


def main(model_name: str = "resnet_s50") -> None:
    dataset = make_dataset()
    model, _ = get_pretrained(model_name, dataset, verbose=True)
    config = model_quant_config(model_name)
    x_sens, y_sens = sensitivity_set(dataset, size=64)
    _, (x_val, y_val) = dataset.splits(1, 512)
    _, fp_acc = evaluate_model(model, x_val, y_val)
    print(f"{model_name}: FP top-1 = {100 * fp_acc:.2f}%  "
          f"(bits candidates {config.bits}, scheme {config.scheme})")

    algorithms = {
        "HAWQ": HAWQ(model, model_name, config,
                     sensitivity=SensitivityConfig(probes=6)),
        "MPQCO": MPQCO(model, model_name, config),
        "CLADO*": CLADO(model, model_name, config, mode="diagonal"),
        "CLADO": CLADO(model, model_name, config, mode="full"),
    }
    # The paper quantizes activations to 8 bits everywhere.
    any_algo = next(iter(algorithms.values()))
    setup_activation_quant(model, any_algo.layers, x_sens, bits=config.act_bits)

    for name, algo in algorithms.items():
        print(f"preparing {name}...", end=" ", flush=True)
        algo.prepare(x_sens, y_sens)
        print(f"{algo.prepare_time:.1f}s")

    sizes = any_algo.layer_sizes()
    total = int(sizes.sum())
    budgets = {f"{avg:.1f}-bit avg": int(total * avg) for avg in (3.0, 4.0, 5.0)}

    header = f"{'algorithm':<10}" + "".join(
        f"{bytes_to_mb(b / 8):>12.4f}MB" for b in budgets.values()
    )
    print("\n" + header)
    for name, algo in algorithms.items():
        row = f"{name:<10}"
        for budget in budgets.values():
            assignment = algo.allocate(budget)
            _, acc = evaluate_assignment(
                model, algo.table, assignment.bits, x_val, y_val
            )
            row += f"{100 * acc:>14.2f}"
        print(row)
    print("\n(each column is a weight-memory budget; entries are top-1 %)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
